// Package dream is a from-scratch Go reproduction of "DREAM: Enabling
// Low-Overhead Rowhammer Mitigation via Directed Refresh Management"
// (Taneja & Qureshi, ISCA 2025).
//
// The package is a facade over the full simulation stack in internal/: a
// DDR5 memory-system simulator with the JEDEC DRFM interface, the paper's
// baseline trackers (PARA, MINT, Graphene, ABACuS, MOAT/PRAC), and the
// paper's contributions DREAM-R and DREAM-C. Three entry points cover most
// uses:
//
//   - Simulate runs one workload under one mitigation scheme and reports
//     performance and mitigation metrics.
//   - Attack mounts a Rowhammer pattern against a scheme and reports the
//     security audit (maximum unmitigated activations).
//   - The Analysis functions expose the paper's analytic models (revised
//     tracker parameters, storage budgets, rate-limit impact).
//
// Experiments regenerating every table and figure live behind
// cmd/experiments; see DESIGN.md for the per-experiment index.
package dream

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/addrmap"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/security"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SchemeID names a mitigation configuration.
type SchemeID string

// Built-in schemes. NRR is the hypothetical per-bank command prior work
// assumed; DRFMsb/DRFMab are the JEDEC DDR5 commands; DREAM-R and DREAM-C
// are the paper's contributions.
const (
	Unprotected   SchemeID = "base"
	PARANRR       SchemeID = "para-nrr"
	PARADRFMsb    SchemeID = "para-drfmsb"
	PARADRFMab    SchemeID = "para-drfmab"
	MINTNRR       SchemeID = "mint-nrr"
	MINTDRFMsb    SchemeID = "mint-drfmsb"
	MINTDRFMab    SchemeID = "mint-drfmab"
	DreamRPARA    SchemeID = "para-dreamr"
	DreamRMINT    SchemeID = "mint-dreamr"
	DreamRMINTRL  SchemeID = "mint-dreamr-rmaq"
	GrapheneNRR   SchemeID = "graphene-nrr"
	GrapheneDRFM  SchemeID = "graphene-drfmsb"
	DreamC        SchemeID = "dreamc"
	DreamCSetAssc SchemeID = "dreamc-setassoc"
	DreamC2x      SchemeID = "dreamc-2x"
	ABACuS        SchemeID = "abacus"
	MOATPRAC      SchemeID = "moat"
	// Post-DREAM trackers (see PAPERS.md and the postdream experiment).
	DAPPER      SchemeID = "dapper"
	QPRAC       SchemeID = "qprac"
	ProbInsert  SchemeID = "prob-insert"
	ProbReplace SchemeID = "prob-replace"
	ProbHybrid  SchemeID = "prob-hybrid"
)

// Schemes lists the facade's named scheme IDs. The full roster — every
// registered scheme, including variants without a SchemeID constant and
// user registrations — is RegisteredSchemes.
func Schemes() []SchemeID {
	return []SchemeID{
		Unprotected, PARANRR, PARADRFMsb, PARADRFMab, MINTNRR, MINTDRFMsb,
		MINTDRFMab, DreamRPARA, DreamRMINT, DreamRMINTRL, GrapheneNRR,
		GrapheneDRFM, DreamC, DreamCSetAssc, DreamC2x, ABACuS, MOATPRAC,
		DAPPER, QPRAC, ProbInsert, ProbReplace, ProbHybrid,
	}
}

// schemeAliases maps facade SchemeID spellings that predate the registry
// onto registered names. Every other SchemeID is already a registered name.
var schemeAliases = map[SchemeID]string{
	DreamC:        "dreamc-randomized",
	DreamCSetAssc: "dreamc-set-assoc",
	DreamC2x:      "dreamc-randomized-2x",
}

func schemeFor(id SchemeID) (exp.Scheme, error) {
	name := string(id)
	if alias, ok := schemeAliases[id]; ok {
		name = alias
	}
	sc, ok := exp.SchemeByName(name)
	if !ok {
		return exp.Scheme{}, fmt.Errorf("dream: unknown scheme %q (RegisteredSchemes lists every name)", id)
	}
	return sc, nil
}

// Scheme-registry vocabulary, re-exported so custom trackers register
// through the facade without importing internals. A SchemeDescriptor's Build
// receives the run's SchemeEnv (threshold, geometry, window-scaled
// thresholds, the per-sub-channel RNG) and returns one Mitigator per
// sub-channel.
type (
	// SchemeEnv is the per-run environment a registered Build receives.
	SchemeEnv = exp.Env
	// SchemeDescriptor carries a scheme's constructor plus its declared
	// storage accounting and security model.
	SchemeDescriptor = exp.Descriptor
	// SecurityModel declares what a scheme guarantees (see SecurityKind).
	SecurityModel = exp.SecurityModel
	// SecurityKind classifies a SecurityModel.
	SecurityKind = exp.SecurityKind
	// SchemeMeta is one registry listing row (RegisteredSchemes).
	SchemeMeta = exp.SchemeMeta
)

// SecurityKind values, re-exported.
const (
	SecurityNone          = exp.SecurityNone
	SecurityDeterministic = exp.SecurityDeterministic
	SecurityProbabilistic = exp.SecurityProbabilistic
)

// RegisterScheme adds a custom mitigation scheme to the process-wide
// registry under name, making it a first-class peer of the built-ins: usable
// as Config.Scheme, runnable by every CLI via -scheme, listed by
// -list-schemes and GET /v1/schemes, and — because registered builds are
// identified by name — cacheable and campaign-shardable. The contract that
// buys: the name must be a complete identity for behavior. Build must be
// pure (same Env and sub always yield an equivalent mitigator; randomness
// only via Env.RNG), and any behavior change must change the name.
//
// Names are lowercase [a-z0-9] words separated by single dashes. Duplicate
// registrations (including collisions with built-ins) are rejected.
// Typically called from an init function or early in main; see
// examples/customtracker.
func RegisterScheme(name string, d SchemeDescriptor) error { return exp.Register(name, d) }

// MustRegisterScheme is RegisterScheme, panicking on error — for init-time
// registration of names known to be valid.
func MustRegisterScheme(name string, d SchemeDescriptor) { exp.MustRegister(name, d) }

// RegisteredSchemes lists every registered scheme (built-in and user),
// sorted by name, with descriptors' declared security model and
// storage-budget accounting evaluated at reference thresholds.
func RegisteredSchemes() []SchemeMeta { return exp.SchemeMetas() }

// Config describes one simulation through the facade. The zero value of
// every sizing field means "use the documented default" (see withDefaults);
// Validate rejects values that are present but out of range.
type Config struct {
	// Workload is one of Workloads() (paper Table 3); rate mode runs one
	// copy per core.
	Workload string
	// Scheme selects the mitigation configuration.
	Scheme SchemeID
	// TRH is the double-sided Rowhammer threshold (default 2000).
	TRH int
	// Cores (default 8) and AccessesPerCore (default 200_000) size the run.
	Cores           int
	AccessesPerCore uint64
	// Seed makes runs reproducible (default fixed).
	Seed uint64
	// WindowScale scales counter-tracker thresholds to the simulated
	// fraction of the 32 ms refresh window (default 1/16; see DESIGN.md).
	WindowScale float64
	// Audit enables the security auditor.
	Audit bool
	// Metrics, when non-nil, attaches the observability layer: per-bank
	// stall attribution, an epoch time-series, and the configured exporters.
	// The simulated schedule and the returned Result are bit-identical with
	// metrics on or off.
	Metrics *MetricsOptions
	// CacheDir, when non-empty, persists results to a content-addressed
	// disk cache at that directory (equivalent to calling SetCacheDir before
	// the run): repeated identical simulations are served from disk across
	// process restarts, bit-identical to recomputation. Metrics-bearing runs
	// keep bypassing the cache. An unusable directory degrades the run to
	// compute-only with a once-per-process notice, never an error.
	CacheDir string
	// CacheMaxBytes caps the disk cache before LRU eviction (0 = 4 GiB).
	CacheMaxBytes int64
}

// Observability types, re-exported so facade users configure metrics and
// consume reports without importing internals.
type (
	// MetricsOptions selects what a run collects and where it exports.
	MetricsOptions = obs.Options
	// MetricsReport is the frozen end-of-run metrics view (Options.OnReport).
	MetricsReport = obs.Report
	// MetricsExporter renders a MetricsReport to a sink (Options.Exporters).
	MetricsExporter = obs.Exporter
	// EpochSample is one time-series point of the epoch sampler.
	EpochSample = obs.EpochSample
	// MetricsEvent is one sampled mitigation-trace record (Options.OnEvent).
	MetricsEvent = obs.Event
)

// SetEngine selects the simulator's event-loop implementation for every
// subsequent run in this process: "wheel" (the default timing-wheel loop) or
// "legacy" (the retained scan-everything loop). The engines are bit-identical
// by construction — the switch exists for equivalence checks and A/B
// benchmarks, and legacy runs bypass the baseline run cache so comparisons
// always time real simulations.
func SetEngine(name string) error {
	switch name {
	case "", "wheel":
		exp.SetLegacyEngine(false)
	case "legacy":
		exp.SetLegacyEngine(true)
	default:
		return fmt.Errorf("dream: unknown engine %q (want wheel or legacy)", name)
	}
	return nil
}

// SetParallelSubChannels toggles parallel sub-channel controller execution
// for every subsequent run in this process. The parallel pass is
// bit-identical to the serial one; it changes only wall-clock, and only
// helps when GOMAXPROCS > 1.
func SetParallelSubChannels(on bool) { exp.SetParallelSubChannels(on) }

// RetryPolicy bounds how transiently-failed simulations are retried:
// attempt count, base/max delay, and jitter. The zero value of every field
// selects its documented default; DefaultRetryPolicy() reproduces the
// historical behavior (one immediate retry with a perturbed tiebreak seed).
type RetryPolicy = harness.Backoff

// DefaultRetryPolicy returns the policy every process starts with: two
// attempts, no delay — i.e. exactly one immediate retry.
func DefaultRetryPolicy() RetryPolicy { return harness.DefaultBackoff() }

// SetRetryPolicy installs the retry policy for every subsequent run in this
// process and returns the previous one. Retries remain salted by attempt
// number, so widening the policy never changes what a successful run
// returns — only how patiently failures are retried.
func SetRetryPolicy(p RetryPolicy) (prev RetryPolicy) { return exp.SetRetryPolicy(p) }

// SetSimTimeout arms (or, with d <= 0, disarms) a wall-clock watchdog for
// every subsequent simulation attempt and returns the previous setting. A
// run exceeding the deadline aborts with a retryable structured error
// carrying its last forward-progress snapshot.
func SetSimTimeout(d time.Duration) (prev time.Duration) { return exp.SetRunTimeout(d) }

// cacheMu serializes SetCacheDir and remembers the applied setting so
// repeated Config.CacheDir runs don't reopen the store on every call.
var cacheMu struct {
	sync.Mutex
	dir string
	max int64
}

// SetCacheDir attaches a persistent result cache at dir for every
// subsequent run in this process (maxBytes caps it before LRU eviction;
// 0 = 4 GiB). An empty dir detaches the cache. Cached results are
// bit-identical to recomputation; corrupt or version-mismatched entries
// are recomputed, never surfaced as errors. On error (e.g. an unwritable
// directory) the process continues compute-only.
func SetCacheDir(dir string, maxBytes int64) error {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if cacheMu.dir == dir && cacheMu.max == maxBytes {
		return nil
	}
	err := exp.SetDiskCache(dir, maxBytes)
	if err != nil {
		cacheMu.dir, cacheMu.max = "", 0
		return err
	}
	cacheMu.dir, cacheMu.max = dir, maxBytes
	return nil
}

// applyCache applies a non-empty Config.CacheDir, degrading to
// compute-only (with a once-per-directory notice) when the dir is unusable.
func (c Config) applyCache() {
	if c.CacheDir == "" {
		return
	}
	if err := SetCacheDir(c.CacheDir, c.CacheMaxBytes); err != nil {
		harness.Noticef("dream-cache-dir-"+c.CacheDir,
			"dream: persistent cache disabled, computing instead: %v", err)
	}
}

// withDefaults fills every unset sizing field with its documented default.
func (c Config) withDefaults() Config {
	if c.TRH == 0 {
		c.TRH = 2000
	}
	if c.WindowScale == 0 {
		c.WindowScale = 1.0 / 16
	}
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.AccessesPerCore == 0 {
		c.AccessesPerCore = 200_000
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Validate reports whether the configuration is runnable. Zero values are
// legal everywhere they have defaults (a zero TRH means 2000, not an error);
// set values must be in range. An empty Scheme is allowed — SimulateCustom
// supplies its own mitigator — but a non-empty Scheme must name a
// registered scheme (built-in or RegisterScheme'd).
func (c Config) Validate() error {
	if c.TRH != 0 && c.TRH < 4 {
		return fmt.Errorf("dream: TRH %d out of range (trackers need TRH >= 4)", c.TRH)
	}
	if c.WindowScale != 0 && (c.WindowScale < 0 || c.WindowScale > 1) {
		return fmt.Errorf("dream: WindowScale %v out of range (0, 1]", c.WindowScale)
	}
	if c.Cores < 0 || c.Cores > 512 {
		return fmt.Errorf("dream: Cores %d out of range [0, 512]", c.Cores)
	}
	if c.Scheme != "" {
		if _, err := schemeFor(c.Scheme); err != nil {
			return err
		}
	}
	return nil
}

// runConfig lowers a default-filled facade config onto the experiment
// runner's RunConfig.
func (c Config) runConfig(sc exp.Scheme, ctx context.Context) exp.RunConfig {
	return exp.RunConfig{
		Workload:        c.Workload,
		Cores:           c.Cores,
		AccessesPerCore: c.AccessesPerCore,
		TRH:             c.TRH,
		Scheme:          sc,
		Seed:            c.Seed,
		WindowScale:     c.WindowScale,
		Audit:           c.Audit,
		Metrics:         c.Metrics,
		Ctx:             ctx,
	}
}

// Result is re-exported from the stats package.
type Result = stats.RunResult

// firstJobErr maps a ParallelCtx outcome onto the facade contract. The
// harness treats context-skipped jobs as non-failures (a -keep-going
// campaign must not count them), but a facade caller asked for exactly these
// results — a job skipped by the caller's context surfaces ctx.Err() instead
// of silently returning a zero Result.
func firstJobErr(ctx context.Context, errs []error, err error) error {
	if err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return e
		}
	}
	return nil
}

// Workloads lists the Table-3 workload names.
func Workloads() []string { return workload.Names() }

// Simulate runs one configuration.
//
// Deprecated: equivalent to SimulateContext(context.Background(), cfg);
// retained so existing callers keep compiling.
func Simulate(cfg Config) (Result, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext runs one configuration under ctx: cancelling ctx aborts
// the simulation at its next progress check with an error satisfying
// errors.Is(err, ctx.Err()). The run executes on the experiment harness's
// shared worker pool (exp.ParallelCtx), so facade runs and full-figure
// experiments share one scheduling and cancellation path.
func SimulateContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	sc, err := schemeFor(cfg.Scheme)
	if err != nil {
		return Result{}, err
	}
	cfg.applyCache()
	results, errs, err := exp.ParallelCtx(ctx, 1,
		func(jctx context.Context, _ int) (Result, error) {
			return exp.Run(cfg.runConfig(sc, jctx))
		})
	if err := firstJobErr(ctx, errs, err); err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// Compare runs the unprotected baseline and the scheme on identical traces
// and returns both results plus the slowdown fraction.
//
// Deprecated: equivalent to CompareContext(context.Background(), cfg);
// retained so existing callers keep compiling.
func Compare(cfg Config) (base, scheme Result, slowdown float64, err error) {
	return CompareContext(context.Background(), cfg)
}

// CompareContext is Compare under a context: baseline and scheme run
// concurrently on the shared worker pool (identical traces — the trace set
// is memoized by seed), and cancelling ctx aborts both.
func CompareContext(ctx context.Context, cfg Config) (base, scheme Result, slowdown float64, err error) {
	cfg = cfg.withDefaults()
	if err = cfg.Validate(); err != nil {
		return
	}
	sc, err := schemeFor(cfg.Scheme)
	if err != nil {
		return
	}
	cfg.applyCache()
	results, errs, err := exp.ParallelCtx(ctx, 2,
		func(jctx context.Context, i int) (Result, error) {
			rc := cfg.runConfig(sc, jctx)
			if i == 0 {
				rc.Scheme = exp.Scheme{Name: "base"}
			}
			return exp.Run(rc)
		})
	if err = firstJobErr(ctx, errs, err); err != nil {
		return
	}
	base, scheme = results[0], results[1]
	slowdown = stats.Slowdown(base, scheme)
	return
}

// AttackKind selects a Rowhammer pattern.
type AttackKind string

// Attack patterns.
const (
	// AttackDoubleSided alternates the two neighbours of a victim row.
	AttackDoubleSided AttackKind = "double-sided"
	// AttackCircular cycles W unique rows (the MINT-stressing pattern).
	AttackCircular AttackKind = "circular"
)

// AttackConfig describes an attack run. As with Config, zero sizing fields
// take documented defaults and Validate rejects out-of-range values.
type AttackConfig struct {
	Kind   AttackKind
	Scheme SchemeID
	TRH    int
	Acts   uint64 // attacker activations (default 500_000)
	Seed   uint64
	// Cores sizes the machine (default 8): core 0 runs the attacker, the
	// rest run Victims (or sit idle).
	Cores   int
	Victims string // optional benign workload on the other cores
	// Metrics attaches the observability layer, as on Config.
	Metrics *MetricsOptions
}

// withDefaults fills every unset sizing field with its documented default.
func (c AttackConfig) withDefaults() AttackConfig {
	if c.TRH == 0 {
		c.TRH = 2000
	}
	if c.Acts == 0 {
		c.Acts = 500_000
	}
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Validate reports whether the attack configuration is runnable.
func (c AttackConfig) Validate() error {
	switch c.Kind {
	case AttackDoubleSided, AttackCircular:
	default:
		return fmt.Errorf("dream: unknown attack kind %q", c.Kind)
	}
	if c.TRH != 0 && c.TRH < 4 {
		return fmt.Errorf("dream: TRH %d out of range (trackers need TRH >= 4)", c.TRH)
	}
	if c.Cores < 0 || c.Cores > 512 {
		return fmt.Errorf("dream: Cores %d out of range [0, 512]", c.Cores)
	}
	if c.Scheme != "" {
		if _, err := schemeFor(c.Scheme); err != nil {
			return err
		}
	}
	return nil
}

// AttackResult reports the audit outcome.
type AttackResult struct {
	Result
	// Breached reports whether any victim accumulated 2·TRH neighbour
	// activations without a refresh — the paper's §2.1 success criterion
	// with its Appendix-B convention that a double-sided threshold of TRH
	// permits TRH activations per side (single-sided tolerance is 2·TRH).
	Breached bool
}

// MarshalJSON emits the embedded Result's versioned encoding plus the
// "breached" field. Without this, the promoted Result.MarshalJSON would
// silently drop Breached from the output.
func (r AttackResult) MarshalJSON() ([]byte, error) {
	inner, err := json.Marshal(r.Result)
	if err != nil {
		return nil, err
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(inner, &fields); err != nil {
		return nil, err
	}
	breached, err := json.Marshal(r.Breached)
	if err != nil {
		return nil, err
	}
	fields["breached"] = breached
	return json.Marshal(fields)
}

// Attack mounts the pattern against the scheme with the auditor enabled.
// The attacker runs with a tiny LLC (modelling clflush) at maximum rate.
//
// Deprecated: equivalent to AttackContext(context.Background(), cfg);
// retained so existing callers keep compiling.
func Attack(cfg AttackConfig) (AttackResult, error) {
	return AttackContext(context.Background(), cfg)
}

// AttackContext is Attack under a context (see SimulateContext for the
// cancellation contract).
func AttackContext(ctx context.Context, cfg AttackConfig) (AttackResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return AttackResult{}, err
	}
	sc, err := schemeFor(cfg.Scheme)
	if err != nil {
		return AttackResult{}, err
	}
	mapper, err := addrmap.NewMOP4(addrmap.Default())
	if err != nil {
		return AttackResult{}, err
	}
	var atk cpu.Trace
	switch cfg.Kind {
	case AttackDoubleSided:
		atk, err = workload.DoubleSided(mapper, 0, 5, 4000, cfg.Acts)
	case AttackCircular:
		atk, err = workload.Circular(mapper, 0, 5, 8000, cfg.TRH/20, cfg.Acts)
	default:
		err = fmt.Errorf("dream: unknown attack kind %q", cfg.Kind)
	}
	if err != nil {
		return AttackResult{}, err
	}
	traces := make([]cpu.Trace, cfg.Cores)
	traces[0] = atk
	for i := 1; i < cfg.Cores; i++ {
		if cfg.Victims != "" {
			p, err := workload.ByName(cfg.Victims)
			if err != nil {
				return AttackResult{}, err
			}
			g, err := workload.New(p, cfg.Acts/uint64(cfg.Cores), i, cfg.Seed)
			if err != nil {
				return AttackResult{}, err
			}
			traces[i] = g
		} else {
			traces[i] = workload.IdleTrace{}
		}
	}
	results, errs, err := exp.ParallelCtx(ctx, 1,
		func(jctx context.Context, _ int) (Result, error) {
			return exp.Run(exp.RunConfig{
				Workload: string(cfg.Kind), Cores: cfg.Cores, AccessesPerCore: cfg.Acts,
				TRH: cfg.TRH, Scheme: sc, Seed: cfg.Seed, WindowScale: 1,
				Audit: true, SmallLLC: true, Traces: traces,
				Metrics: cfg.Metrics, Ctx: jctx,
			})
		})
	if err := firstJobErr(ctx, errs, err); err != nil {
		return AttackResult{}, err
	}
	r := results[0]
	return AttackResult{Result: r, Breached: r.MaxVictim >= 2*uint64(cfg.TRH)}, nil
}

// Mitigator is re-exported so downstream users can implement custom
// trackers against the controller hook (see examples/customtracker).
type Mitigator = memctrl.Mitigator

// Decision, Op, Tick, and Mitigation are the hook vocabulary for custom
// mitigators.
type (
	Decision   = memctrl.Decision
	Op         = memctrl.Op
	Tick       = memctrl.Tick
	Mitigation = dram.Mitigation
)

// Op kinds, re-exported.
const (
	OpNRR            = memctrl.OpNRR
	OpDRFMsb         = memctrl.OpDRFMsb
	OpDRFMab         = memctrl.OpDRFMab
	OpExplicitSample = memctrl.OpExplicitSample
	OpGangMitigate   = memctrl.OpGangMitigate
	OpStallAll       = memctrl.OpStallAll
)

// SimulateCustom runs a workload under a user-provided mitigator factory
// (one mitigator per sub-channel).
//
// Deprecated: register the tracker with RegisterScheme and set Config.Scheme
// instead — registered schemes are cacheable, shardable, and reachable from
// the CLIs and dreamd, none of which a one-off factory closure can be.
// Retained as a working wrapper so existing callers keep compiling.
func SimulateCustom(cfg Config, build func(sub int) Mitigator) (Result, error) {
	return SimulateCustomContext(context.Background(), cfg, build)
}

// SimulateCustomContext is SimulateCustom under a context (see
// SimulateContext for the cancellation contract). Config.Scheme is ignored;
// the build factory supplies the mitigators.
//
// Deprecated: prefer RegisterScheme + SimulateContext (see SimulateCustom).
func SimulateCustomContext(ctx context.Context, cfg Config, build func(sub int) Mitigator) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	// Custom schemes never declare purity (their behavior is not identified
	// by a name), so they are never served from or written to the cache;
	// applying the knob still lets their baselines share the disk tier.
	cfg.applyCache()
	sc := exp.Scheme{
		Name:  "custom",
		Build: func(env exp.Env, sub int) (memctrl.Mitigator, error) { return build(sub), nil },
	}
	results, errs, err := exp.ParallelCtx(ctx, 1,
		func(jctx context.Context, _ int) (Result, error) {
			return exp.Run(cfg.runConfig(sc, jctx))
		})
	if err := firstJobErr(ctx, errs, err); err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// Analysis re-exports the paper's analytic models.
type Analysis struct{}

// RevisedPARAProb returns DREAM-R's PARA probability without ATM
// (Appendix A; 1/85 at T_RH = 2000).
func (Analysis) RevisedPARAProb(trh int) float64 { return security.RevisedPARAProbApprox(trh) }

// RevisedMINTWindow returns DREAM-R's MINT window without ATM (Appendix B).
func (Analysis) RevisedMINTWindow(trh int) int { return security.RevisedMINTWindow(trh) }

// GrapheneKBPerBank returns Table 1's storage.
func (Analysis) GrapheneKBPerBank(trh int) float64 { return security.GrapheneKBPerBank(trh) }

// DreamCKBPerBank returns Table 6's storage.
func (Analysis) DreamCKBPerBank(trh int) float64 { return security.DreamCKBPerBank(trh, 1) }

// ABACuSKBPerBank returns the §5.8 comparison storage.
func (Analysis) ABACuSKBPerBank(trh int) float64 { return security.ABACuSKBPerBank(trh) }

// RMAQImpact returns Table 7's threshold increase under the DRFM rate
// limit.
func (Analysis) RMAQImpact(w int) int { return security.RMAQImpact(w) }
