package dream

import (
	"testing"
)

func TestSchemesAllSimulate(t *testing.T) {
	// Every built-in scheme must run a small configuration end to end.
	for _, id := range Schemes() {
		res, err := Simulate(Config{
			Workload:        "xz",
			Scheme:          id,
			TRH:             2000,
			Cores:           2,
			AccessesPerCore: 2000,
			Seed:            1,
		})
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if res.IPCSum() <= 0 {
			t.Errorf("%s: IPC sum %v", id, res.IPCSum())
		}
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := Simulate(Config{Workload: "xz", Scheme: "bogus"}); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestCompareReportsSlowdown(t *testing.T) {
	base, res, slowdown, err := Compare(Config{
		Workload:        "bc",
		Scheme:          PARADRFMab,
		TRH:             500,
		Cores:           4,
		AccessesPerCore: 6000,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if (base.IPCSum() <= res.IPCSum()) != (slowdown <= 0) {
		t.Errorf("inconsistent slowdown %v (base %v, scheme %v)", slowdown, base.IPCSum(), res.IPCSum())
	}
	if slowdown <= 0 {
		t.Errorf("PARA+DRFMab at 500 should cost something, got %v", slowdown)
	}
}

func TestAttackFacade(t *testing.T) {
	// The unprotected baseline must breach; DREAM-R must not.
	unprot, err := Attack(AttackConfig{
		Kind: AttackDoubleSided, Scheme: Unprotected, TRH: 1000, Acts: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !unprot.Breached {
		t.Errorf("unprotected run must breach: max victim %d", unprot.MaxVictim)
	}
	prot, err := Attack(AttackConfig{
		Kind: AttackDoubleSided, Scheme: DreamRMINT, TRH: 1000, Acts: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Breached {
		t.Errorf("DREAM-R breached: max victim %d", prot.MaxVictim)
	}
	if prot.Mitigations == 0 {
		t.Error("DREAM-R performed no mitigations under attack")
	}
}

func TestAnalysisFacade(t *testing.T) {
	var a Analysis
	if inv := 1 / a.RevisedPARAProb(2000); inv < 84 || inv > 86 {
		t.Errorf("revised p = 1/%.1f", inv)
	}
	if a.RevisedMINTWindow(2000) != 97 {
		t.Error("revised W wrong")
	}
	if kb := a.DreamCKBPerBank(500); kb < 0.8 || kb > 1.4 {
		t.Errorf("DreamC storage = %v", kb)
	}
	if a.RMAQImpact(25) < 30 {
		t.Error("RMAQ impact at W=25 should be ~36")
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(Workloads()) != 22 {
		t.Errorf("workloads = %d", len(Workloads()))
	}
}

func TestSimulateCustom(t *testing.T) {
	type nop struct{ Mitigator }
	res, err := SimulateCustom(Config{
		Workload: "xz", Cores: 2, AccessesPerCore: 2000, Seed: 1,
	}, func(sub int) Mitigator {
		return noneMit{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPCSum() <= 0 {
		t.Error("custom run produced no IPC")
	}
	_ = nop{}
}

// noneMit is a minimal custom Mitigator for the facade test.
type noneMit struct{}

func (noneMit) Name() string                                       { return "none-custom" }
func (noneMit) OnActivate(now Tick, bank int, row uint32) Decision { return Decision{} }
func (noneMit) OnSampled(now Tick, bank int, row uint32)           {}
func (noneMit) OnMitigations(now Tick, mits []Mitigation)          {}
func (noneMit) OnRefresh(now Tick, refIndex uint64) []Op           { return nil }
func (noneMit) StorageBits() int64                                 { return 0 }
