package dream

// Facade API tests for the context-aware entry points, Config/AttackConfig
// validation, and the versioned JSON surface.

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" = valid
	}{
		{"zero-config defaults", Config{}, ""},
		{"zero TRH is default-me", Config{Workload: "xz", Scheme: DreamRMINT}, ""},
		{"tiny TRH", Config{TRH: 2}, "TRH"},
		{"negative window", Config{WindowScale: -0.5}, "WindowScale"},
		{"window above 1", Config{WindowScale: 1.5}, "WindowScale"},
		{"negative cores", Config{Cores: -1}, "Cores"},
		{"absurd cores", Config{Cores: 1 << 10}, "Cores"},
		{"unknown scheme", Config{Scheme: "bogus"}, "unknown scheme"},
		{"empty scheme ok (custom)", Config{}, ""},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestSimulateContextCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, Config{Workload: "xz", Scheme: DreamRMINT})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSimulateContextCancelMidRun(t *testing.T) {
	// Cancel from inside the run: the first mitigation event fires the
	// cancel, and the simulation must abort at its next progress check
	// instead of running the remaining accesses.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := SimulateContext(ctx, Config{
		Workload: "mcf", Scheme: DreamRMINT, TRH: 100, Cores: 2,
		AccessesPerCore: 200_000, Seed: 3,
		Metrics: &MetricsOptions{OnEvent: func(MetricsEvent) { cancel() }},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %v), want context.Canceled", err, res.IPCSum())
	}
}

func TestCompareContextMatchesSequential(t *testing.T) {
	cfg := Config{Workload: "bc", Scheme: PARADRFMab, TRH: 500,
		Cores: 2, AccessesPerCore: 6000, Seed: 2}
	base1, res1, slow1, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base2, res2, slow2, err := CompareContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := base1.Diff(base2); len(d) != 0 {
		t.Errorf("baselines differ: %v", d)
	}
	if d := res1.Diff(res2); len(d) != 0 {
		t.Errorf("scheme results differ: %v", d)
	}
	if slow1 != slow2 {
		t.Errorf("slowdowns differ: %v vs %v", slow1, slow2)
	}
}

func TestAttackConfigValidate(t *testing.T) {
	if err := (AttackConfig{Kind: "warbling"}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "attack kind") {
		t.Errorf("bad kind: %v", err)
	}
	if err := (AttackConfig{Kind: AttackDoubleSided, Cores: -2}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "Cores") {
		t.Errorf("bad cores: %v", err)
	}
	if err := (AttackConfig{Kind: AttackCircular, Scheme: DreamRMINT}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAttackRespectsCores(t *testing.T) {
	res, err := Attack(AttackConfig{
		Kind: AttackDoubleSided, Scheme: Unprotected, TRH: 1000,
		Acts: 30_000, Cores: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoreIPC) != 2 {
		t.Errorf("machine has %d cores, want the configured 2", len(res.CoreIPC))
	}
}

func TestAttackResultJSONKeepsBreached(t *testing.T) {
	r := AttackResult{Breached: true}
	r.Scheme = "base"
	r.Activations = 42
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["breached"] != true {
		t.Errorf("breached missing from %s", b)
	}
	if m["schema_version"] != float64(1) || m["activations"] != float64(42) {
		t.Errorf("embedded versioned encoding lost: %s", b)
	}
}

func TestDeprecatedWrappersStillWork(t *testing.T) {
	// Simulate/SimulateCustom/Compare/Attack are exercised elsewhere; this
	// guards that the wrappers and the context variants share defaults.
	cfg := Config{Workload: "xz", Scheme: MINTDRFMsb, TRH: 2000,
		Cores: 2, AccessesPerCore: 2000, Seed: 1}
	r1, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := r1.Diff(r2); len(d) != 0 {
		t.Errorf("wrapper and context variant disagree: %v", d)
	}
}
