package dream

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/exp"
)

// TestConfigCacheDirPersistsResults drives the facade's cache knob: a run
// with Config.CacheDir populates the disk tier, and after a full in-memory
// reset (the process-restart model) the identical run is served from disk
// bit-identically.
func TestConfigCacheDirPersistsResults(t *testing.T) {
	dir := t.TempDir()
	defer func() {
		SetCacheDir("", 0)
		exp.ResetCache()
	}()
	cfg := Config{
		Workload:        "xz",
		Scheme:          MINTDRFMsb,
		TRH:             2000,
		Cores:           2,
		AccessesPerCore: 2000,
		Seed:            1,
		CacheDir:        dir,
	}
	exp.ResetCache()
	cold, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := exp.CacheStats()
	if st.Disk.Puts == 0 {
		t.Fatalf("facade run wrote nothing to disk: %+v", st.Disk)
	}

	exp.ResetCache()
	warm, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("disk-served facade result differs:\ncold %+v\nwarm %+v", cold, warm)
	}
	if st := exp.CacheStats(); st.DiskMitHits == 0 {
		t.Errorf("facade warm run not disk-served: %+v", st)
	}
}

// TestSetCacheDirUnusableDegrades: the facade contract is degrade-to-compute,
// never fail — an unusable dir errors from SetCacheDir but Simulate with the
// same CacheDir still runs.
func TestSetCacheDirUnusableDegrades(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "not-a-dir")
	// Make the path unusable by occupying it with a file.
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		SetCacheDir("", 0)
		exp.ResetCache()
	}()
	if err := SetCacheDir(bad, 0); err == nil {
		t.Fatal("SetCacheDir succeeded on a file path")
	}
	res, err := Simulate(Config{
		Workload: "xz", Scheme: Unprotected, Cores: 2,
		AccessesPerCore: 2000, Seed: 1, CacheDir: bad,
	})
	if err != nil {
		t.Fatalf("Simulate failed instead of degrading to compute-only: %v", err)
	}
	if res.SimTimeNS <= 0 {
		t.Errorf("degraded run produced no simulation: %+v", res)
	}
}
